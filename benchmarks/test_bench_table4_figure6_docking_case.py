"""Benchmark for Table 4 and Figure 6: the 4jpy docking case study.

Table 4 compares the average docking metrics of the QDockBank prediction and
the AlphaFold3 prediction for PDB entry 4jpy (affinity, pose-RMSD lower/upper
bounds); Figure 6 visualises the docked complex.  The benchmark runs the full
fold → ligand → multi-seed docking pipeline for that single fragment and
prints the measured table next to the paper's numbers, plus a text rendering
of the docking overlay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import build_case_study_table, format_table
from repro.bio.reference import ReferenceStructureGenerator
from repro.config import PipelineConfig
from repro.dataset.builder import DatasetBuilder
from repro.docking.ligand import SyntheticLigandGenerator

#: Paper Table 4 values for 4jpy.
PAPER_TABLE4 = {
    "QDock": {"affinity": -4.3, "rmsd_lb": 1.4, "rmsd_ub": 1.9},
    "AF3": {"affinity": -3.9, "rmsd_lb": 2.0, "rmsd_ub": 3.2},
}


@pytest.fixture(scope="module")
def case_bank():
    config = PipelineConfig.fast().with_updates(docking_seeds=6, docking_mc_steps=180)
    builder = DatasetBuilder(config=config, processes=0)
    return builder.build(builder.select_fragments(pdb_ids=["4jpy"]))


def _table4(bank) -> list[dict]:
    rows = build_case_study_table(bank, "4jpy", methods=("QDock", "AF3"))
    for row in rows:
        row["paper_affinity"] = PAPER_TABLE4[row["method"]]["affinity"]
        row["paper_rmsd_lb"] = PAPER_TABLE4[row["method"]]["rmsd_lb"]
        row["paper_rmsd_ub"] = PAPER_TABLE4[row["method"]]["rmsd_ub"]
    print("\n=== Table 4 (4jpy): measured vs paper ===")
    print(format_table(rows))
    return rows


def test_bench_table4_4jpy_case(benchmark, case_bank):
    rows = benchmark(_table4, case_bank)
    by_method = {r["method"]: r for r in rows}
    # Both predictions must produce favourable (negative) affinities in the
    # same few-kcal/mol regime the paper reports.
    assert by_method["QDock"]["affinity_kcal_mol"] < 0
    assert by_method["AF3"]["affinity_kcal_mol"] < 0
    assert -15.0 < by_method["QDock"]["affinity_kcal_mol"] < -1.0
    # Pose spread bounds are ordered the way Vina defines them.
    for row in rows:
        assert 0.0 <= row["rmsd_lb"] <= row["rmsd_ub"] + 1e-9


def test_bench_figure6_docking_overlay(benchmark, case_bank):
    """Figure 6: the ligand sits in contact with the predicted fragment surface."""
    entry = case_bank.entry("4jpy")
    reference = ReferenceStructureGenerator().generate("4jpy", entry.fragment.sequence)
    ligand = SyntheticLigandGenerator().generate(reference)

    from repro.docking.vina import DockingEngine

    engine = DockingEngine(num_seeds=1, num_poses=3, mc_steps=150)

    def _overlay():
        receptor = entry.predicted_structure
        rec = receptor.all_coords()
        result = engine.dock(receptor, ligand, receptor_id="4jpy:QDock")
        # Use the best docked pose (the complex the figure visualises).
        best_run = result.runs[0]
        lig = best_run.poses[0].coordinates
        dist = np.linalg.norm(lig[:, None, :] - rec[None, :, :], axis=2)
        contacts = int(np.count_nonzero(dist.min(axis=1) < 6.0))
        print("\n=== Figure 6 (4jpy docking case) ===")
        print(f"receptor atoms: {rec.shape[0]}, ligand atoms: {lig.shape[0]}")
        print(f"docked affinity of rendered pose: {best_run.poses[0].affinity:.2f} kcal/mol")
        print(f"ligand atoms within 6 A of the receptor surface: {contacts}/{lig.shape[0]}")
        print(f"closest heavy-atom contact: {dist.min():.2f} A")
        return contacts, float(dist.min())

    contacts, closest = benchmark(_overlay)
    assert contacts >= ligand.num_atoms // 2  # spatial complementarity
    assert closest > 1.0  # docked pose does not interpenetrate the receptor
