"""Benchmark for Figure 7: the 2qbs RMSD-based structural comparison.

The paper overlays the experimental 2qbs fragment with the QDockBank and
AlphaFold3 predictions and reports final RMSDs of 2.428 Å (QDock) and 4.234 Å
(AF3).  The benchmark regenerates the per-residue deviation profile for both
methods and checks the qualitative outcome (QDock closer to the experimental
structure than AF3 for this fragment).
"""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plots import deviation_profile
from repro.analysis.comparison import per_residue_case_study
from repro.config import PipelineConfig
from repro.dataset.builder import DatasetBuilder

#: Paper values for Figure 7.
PAPER_RMSD = {"QDock": 2.428, "AF3": 4.234}


@pytest.fixture(scope="module")
def case_bank():
    config = PipelineConfig.fast()
    builder = DatasetBuilder(config=config, processes=0)
    return builder.build(builder.select_fragments(pdb_ids=["2qbs"]))


def _figure7(bank):
    study = per_residue_case_study(bank, "2qbs", methods=("QDock", "AF3"))
    print("\n=== Figure 7 (2qbs per-residue deviation, '=' <= 2 A, 'X' > 2 A) ===")
    print(deviation_profile(study.methods, threshold=2.0))
    print({m: round(v, 3) for m, v in study.rmsd.items()}, "| paper:", PAPER_RMSD)
    return study


def test_bench_figure7_rmsd_case(benchmark, case_bank):
    study = benchmark(_figure7, case_bank)
    assert set(study.methods) == {"QDock", "AF3"}
    assert study.methods["QDock"].shape[0] == 11  # 2qbs fragment has 11 residues
    # Both RMSDs land in the paper's few-Angstrom regime.
    assert 0.2 < study.rmsd["QDock"] < 8.0
    assert 0.2 < study.rmsd["AF3"] < 8.0
