"""Benchmarks for the Sec. 4.2 resource gradient and the Sec. 1/5 runtime & cost claims."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.statistics import encoding_resource_table, resource_gradient
from repro.dataset.fragments import PAPER_FRAGMENTS
from repro.hardware.cost import CostModel
from repro.hardware.timing import ExecutionTimeModel

#: Paper Sec. 4.2 group averages.
PAPER_GRADIENT = {
    "S": {"qubit_mean": 23.0, "depth_mean": 127.0, "energy_range_mean": 541.7},
    "M": {"qubit_mean": 79.4, "depth_mean": 262.0, "energy_range_mean": 2961.7},
    "L": {"qubit_mean": 98.2, "depth_mean": 396.0, "energy_range_mean": 6883.6},
}


def _gradient(bank):
    measured = resource_gradient(bank)
    paper = resource_gradient(use_paper_values=True)
    rows = []
    for group in ("S", "M", "L"):
        row = {"group": group}
        if group in measured:
            row.update({f"measured_{k}": v for k, v in measured[group].as_dict().items() if k != "group"})
        row.update({f"paper_{k}": v for k, v in paper[group].as_dict().items() if k != "group"})
        rows.append(row)
    print("\n=== Sec. 4.2 resource gradient: measured vs paper ===")
    print(format_table(rows, columns=[c for c in rows[0]]))
    print("\nEncoding resource model (lengths 5-14):")
    print(format_table(encoding_resource_table()))
    return measured


def test_bench_resource_gradient(benchmark, bench_bank):
    measured = benchmark(_gradient, bench_bank)
    # The S < M < L gradient must hold in every measured resource column.
    groups = [g for g in ("S", "M", "L") if g in measured]
    for a, b in zip(groups[:-1], groups[1:]):
        assert measured[a].qubit_mean < measured[b].qubit_mean
        assert measured[a].depth_mean < measured[b].depth_mean
        assert measured[a].energy_range_mean < measured[b].energy_range_mean


def _runtime_cost():
    timing = ExecutionTimeModel()
    cost_model = CostModel()
    estimates = [timing.estimate(f.pdb_id, f.paper.qubits, f.paper.depth) for f in PAPER_FRAGMENTS]
    qpu_hours = sum(e.qpu_seconds for e in estimates) / 3600.0
    wall_hours = sum(e.total_seconds for e in estimates) / 3600.0
    total_cost = cost_model.dataset_cost(estimates).total_usd
    print("\n=== Sec. 1/5 dataset-scale claims (paper settings) ===")
    print(f"total QPU time:        {qpu_hours:10.1f} h   (paper claim: > 60 h)")
    print(f"total wall-clock time: {wall_hours:10.1f} h   (paper tables sum to "
          f"{sum(f.paper.exec_time_s for f in PAPER_FRAGMENTS) / 3600.0:.1f} h)")
    print(f"total cost:            {total_cost:10,.0f} USD (paper claim: > 1,000,000 USD)")
    return qpu_hours, total_cost


def test_bench_runtime_and_cost_claims(benchmark):
    qpu_hours, total_cost = benchmark(_runtime_cost)
    assert qpu_hours > 60.0
    assert total_cost > 1_000_000.0
