"""Benchmarks regenerating Figures 2 and 3 (QDock vs AF2 / AF3 scatter panels).

Each figure has eight panels: affinity and RMSD for the All/L/M/S groups, with
points below the identity diagonal meaning QDock achieved the lower (better)
value.  The benchmark renders every panel as an ASCII scatter plot and asserts
the headline shape: QDock wins the majority of fragments overall on RMSD, and
the AF3 baseline is the harder of the two comparisons.
"""

from __future__ import annotations

import pytest

from repro.analysis.ascii_plots import scatter_plot
from repro.analysis.comparison import COMPARISON_GROUPS


def _render_figure(comparison, baseline: str) -> dict:
    summary = {}
    for metric in ("affinity", "rmsd"):
        for group in COMPARISON_GROUPS:
            try:
                panel = comparison.panel(metric, group)
            except Exception:
                continue
            plot = scatter_plot(
                panel.baseline_values,
                panel.reference_values,
                xlabel=baseline,
                ylabel="QDock",
                title=f"{metric} ({group}) QDock vs {baseline}",
            )
            print("\n" + plot)
            summary[(metric, group)] = (panel.wins, panel.total)
    return summary


@pytest.mark.parametrize("baseline,figure", [("AF2", 2), ("AF3", 3)])
def test_bench_scatter_figure(benchmark, bench_comparisons, baseline, figure):
    comparison = bench_comparisons[baseline]
    summary = benchmark(_render_figure, comparison, baseline)
    wins, total = summary[("rmsd", "All")]
    assert total >= 6
    # Headline shape: QDock wins the majority of RMSD comparisons against AF2
    # (paper: 92.7%); against AF3 it must stay at least competitive (paper: 80%).
    if baseline == "AF2":
        assert wins / total >= 0.5
    else:
        assert wins / total >= 0.3
