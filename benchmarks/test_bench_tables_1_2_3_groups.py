"""Benchmarks regenerating Tables 1, 2 and 3 (per-group fragment resource tables).

Each table lists, per fragment: sequence, residue range, qubit count, circuit
depth, lowest/highest energy during optimisation, energy range and execution
time.  The benchmark regenerates the measured columns from the bank's quantum
metadata and prints them next to the paper's values.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import build_group_table, format_table
from repro.dataset.fragments import fragments_by_group

_COLUMNS = [
    "pdb_id",
    "sequence",
    "qubits",
    "paper_qubits",
    "depth",
    "paper_depth",
    "energy_range",
    "paper_energy_range",
    "exec_time_s",
    "paper_exec_time_s",
]


def _check_and_print(group: str, bank) -> list[dict]:
    rows = build_group_table(group, bank)
    built = [r for r in rows if "qubits" in r and r.get("qubits") is not None]
    # Every fragment actually built must reproduce the paper's qubit count and depth exactly.
    for row in built:
        assert row["qubits"] == row["paper_qubits"], row["pdb_id"]
        assert row["depth"] == row["paper_depth"], row["pdb_id"]
        assert row["energy_range"] > 0
        assert row["exec_time_s"] > 0
    print(f"\n=== Table ({group} group): measured vs paper ===")
    print(format_table(built or rows, columns=[c for c in _COLUMNS if any(c in r for r in rows)]))
    return rows


@pytest.mark.parametrize("group,table_number", [("L", 1), ("M", 2), ("S", 3)])
def test_bench_group_table(benchmark, bench_bank, group, table_number):
    rows = benchmark(_check_and_print, group, bench_bank)
    assert len(rows) == len(fragments_by_group(group))
