"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  They share
a single QDockBank built once per session over a stratified subset of the 55
fragments (3 per length group by default) with the fast pipeline preset; set
``QDOCKBANK_BENCH_FULL=1`` in the environment to sweep all 55 fragments at the
cost of a much longer run.

The bank build is routed through the job engine.  Two environment knobs make
repeat benchmark sessions cheap:

* ``QDOCKBANK_BENCH_CACHE=<dir>`` — persistent result cache; a warm cache
  skips every VQE execution, baseline fold and docking search on later
  sessions (CI's ``bench-warm-cache`` job exercises exactly this).
* ``QDOCKBANK_BENCH_PROCESSES=<n>`` — fan engine jobs and entry assembly out
  over ``n`` worker processes (results are bit-identical to a serial run).
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

import pytest

from repro.analysis.comparison import compare_methods
from repro.config import PipelineConfig
from repro.dataset.builder import DatasetBuilder

warnings.filterwarnings("ignore", message="COBYLA")

#: Stratified subset used by default (3 fragments per group, ordered as in the paper).
DEFAULT_SUBSET_PER_GROUP = 3


@pytest.fixture(scope="session")
def bench_config() -> PipelineConfig:
    """Pipeline settings used for benchmark runs."""
    return PipelineConfig.fast().with_updates(docking_seeds=4, docking_mc_steps=150)


@pytest.fixture(scope="session")
def bench_bank(bench_config):
    """The QDockBank slice every table/figure benchmark reads from."""
    builder = DatasetBuilder(
        config=bench_config,
        processes=int(os.environ.get("QDOCKBANK_BENCH_PROCESSES", "0")),
        cache_dir=os.environ.get("QDOCKBANK_BENCH_CACHE") or None,
    )
    if os.environ.get("QDOCKBANK_BENCH_FULL") == "1":
        fragments = builder.select_fragments()
    else:
        fragments = builder.select_fragments(
            groups=["L", "M", "S"], limit_per_group=DEFAULT_SUBSET_PER_GROUP
        )
    bank = builder.build(fragments)
    cache_dir = os.environ.get("QDOCKBANK_BENCH_CACHE")
    if cache_dir:
        # Record this session's engine counters next to the cache (outside the
        # */*.json entry layout) so CI's warm-cache job can assert that a warm
        # session executed zero jobs — see .github/workflows/ci.yml.
        Path(cache_dir, "last-session-stats.json").write_text(
            json.dumps(builder.engine.stats(), indent=2) + "\n"
        )
    return bank


@pytest.fixture(scope="session")
def bench_comparisons(bench_bank):
    """QDock-vs-AF2 and QDock-vs-AF3 comparisons over the benchmark bank."""
    return {name: compare_methods(bench_bank, name) for name in ("AF2", "AF3")}
