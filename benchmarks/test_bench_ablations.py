"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the internal design decisions so a
downstream user can see what each piece buys:

* CVaR objective vs plain expectation in the stage-1 optimisation;
* quantum (VQE sampling) vs exact classical solver on the same Hamiltonian;
* the ancilla-margin strategy's effect on SWAP counts under injected defects;
* MPS bond-dimension sweep (accuracy of the sampled distribution).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.hardware.routing import LinearChainRouter
from repro.lattice.classical import ClassicalFoldingSolver
from repro.lattice.hamiltonian import LatticeHamiltonian
from repro.quantum.ansatz import EfficientSU2
from repro.quantum.mps import MPSSimulator
from repro.quantum.statevector import StatevectorSimulator
from repro.vqe.vqe import VQE

_SEQUENCE = "EDACQGDSGG"  # 2bok / 2vwo fragment (10 residues)


def test_bench_cvar_vs_mean_objective(benchmark):
    """CVaR-VQE reaches a lower best-sampled energy than the plain-mean objective."""
    hamiltonian = LatticeHamiltonian(_SEQUENCE)

    def run(alpha: float) -> float:
        config = PipelineConfig(
            vqe_iterations=20, optimisation_shots=128, final_shots=1024, cvar_alpha=alpha, seed=3
        )
        return VQE(hamiltonian, config=config, seed=3).run().best_conformation.energy

    cvar_energy = benchmark(run, 0.2)
    mean_energy = run(1.0)
    print(f"\nbest decoded energy: CVaR(0.2)={cvar_energy:.2f}  mean objective={mean_energy:.2f}")
    assert cvar_energy <= mean_energy + 1e-6


def test_bench_quantum_vs_classical_solver(benchmark):
    """The sampled VQE solution approaches the exact classical ground state."""
    hamiltonian = LatticeHamiltonian(_SEQUENCE)
    exact = ClassicalFoldingSolver(hamiltonian).solve_exact()

    def run() -> float:
        config = PipelineConfig(vqe_iterations=20, optimisation_shots=128, final_shots=2048, seed=5)
        return VQE(hamiltonian, config=config, seed=5).run().best_conformation.energy

    sampled = benchmark(run)
    gap = (sampled - exact.energy) / abs(exact.energy)
    print(f"\nexact={exact.energy:.2f} sampled={sampled:.2f} relative gap={gap:.4f}")
    assert gap < 0.05  # within 5% of the exact ground state


def test_bench_margin_strategy_swaps(benchmark):
    """Sec. 5.3: extra ancilla qubits reduce routing SWAPs when defects are present."""
    router = LinearChainRouter()
    chain = router.route(60, margin=10).physical_chain
    defects = tuple(chain[i] for i in (7, 19, 33))

    def run():
        return (
            router.route(60, margin=0, defective_qubits=defects).swap_count,
            router.route(60, margin=10, defective_qubits=defects).swap_count,
        )

    without_margin, with_margin = benchmark(run)
    print(f"\nSWAPs without margin: {without_margin}, with 10-qubit margin: {with_margin}")
    assert with_margin <= without_margin


@pytest.mark.parametrize("bond_dim", [2, 4, 8])
def test_bench_mps_bond_dimension(benchmark, bond_dim):
    """Sampling fidelity of the MPS backend vs the exact simulator across bond dimensions."""
    ansatz = EfficientSU2(10, reps=2)
    rng = np.random.default_rng(0)
    circuit = ansatz.bound(rng.normal(size=ansatz.num_parameters))
    exact_probs = StatevectorSimulator().probabilities(circuit)

    # Use total-variation distance on probabilities, which is well defined even
    # when truncation breaks global phase alignment.
    def tv_distance() -> float:
        mps = MPSSimulator(max_bond_dimension=bond_dim).statevector(circuit)
        p = np.abs(mps) ** 2
        p = p / p.sum()
        return float(0.5 * np.abs(p - exact_probs).sum())

    distance = benchmark(tv_distance)
    print(f"\nbond dimension {bond_dim}: total-variation distance to exact = {distance:.4f}")
    # Accuracy improves monotonically with bond dimension and is exact at chi=8
    # for the reps=2 linear EfficientSU2 circuit.
    assert distance < (0.8 if bond_dim == 2 else 0.4)
    if bond_dim >= 8:
        assert distance < 1e-6
