"""Benchmark for Figure 5: amino-acid interaction coverage of the 55 fragments."""

from __future__ import annotations

from repro.analysis.interactions import interaction_coverage

#: The paper reports 395 of the 400 interaction-matrix cells covered (98.75%).
PAPER_COVERED = 395
PAPER_FRACTION = 0.9875


def _coverage():
    cov = interaction_coverage()
    print("\n=== Figure 5: interaction coverage ===")
    print(f"covered pairs: {cov.covered_pairs}/400  ({100 * cov.coverage_fraction:.2f}%)  "
          f"paper: {PAPER_COVERED}/400 ({100 * PAPER_FRACTION:.2f}%)")
    print(f"missing pairs: {cov.missing_pairs}")
    print(f"most frequent unordered pairs: {cov.most_frequent(6)}")
    print(f"Miyazawa-Jernigan type coverage: {100 * cov.mj_coverage_fraction:.2f}%")
    return cov


def test_bench_figure5_interaction_coverage(benchmark):
    cov = benchmark(_coverage)
    assert cov.total_pairs == 400
    # This quantity depends only on the published 55 sequences, so it should
    # land within a few cells of the paper's 395/400.
    assert abs(cov.covered_pairs - PAPER_COVERED) <= 15
    assert cov.coverage_fraction >= 0.94
    # The paper highlights G-A and L-G among the most frequent pairs.
    frequent = {frozenset(p[:2]) for p in cov.most_frequent(8)}
    assert frozenset({"G", "A"}) in frequent or frozenset({"L", "G"}) in frequent
