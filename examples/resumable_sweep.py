"""A resumable benchmark sweep driven through streaming engine sessions.

Runs a mixed fold + baseline-fold batch as one journalled session, printing a
progress line per completed job.  Killed partway (Ctrl-C / SIGTERM), the
journal under ``--session-dir`` records exactly which jobs completed; running
the same command again — or ``repro-session resume`` — executes only the
remainder and replays the rest from the result cache.

CI's ``session-resume`` job uses this script end-to-end: start, SIGTERM,
resume, then assert via the emitted stats JSON that zero completed jobs were
re-executed.  The ``distributed-sweep`` job runs the same sweep on the
``filequeue`` transport against externally launched ``repro-worker`` daemons
(``--transport filequeue --spool-dir ...``), SIGKILLs one daemon mid-job, and
diffs the ``--results-json`` canonical payloads against a serial run — then
repeats the sweep with ``--no-spool-payloads``, asserting the spool carried
only payload-free completion stubs — then once more on a three-worker
heterogeneous fleet (one ``--tags baseline_fold`` worker, one ``--throttle``d
straggler rescued by ``--speculate 3``, baselines at ``--baseline-priority
5``), asserting the same bit-identity with zero duplicate completions.  The ``network-serve`` job does the same
against a ``repro-serve`` daemon (``--transport network --serve-port ...``),
killing and restarting the *server* mid-batch, and finishes with a warm
client whose cache stack ends in the server's own tier (``--cache-remote``):
the whole sweep must resolve over cache frames with zero executions.

Usage::

    PYTHONPATH=src python examples/resumable_sweep.py \
        --session-dir .sweep/sessions --cache-dir .sweep/cache

    repro-worker .sweep/spool &  # then, distributed:
    PYTHONPATH=src python examples/resumable_sweep.py \
        --session-dir .sweep/sessions --cache-dir .sweep/cache \
        --transport filequeue --spool-dir .sweep/spool --results-json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path

from repro.config import PipelineConfig
from repro.engine import Engine

#: The sweep's fragments: long enough that a fold takes a few seconds, so an
#: interrupt signal lands mid-sweep rather than after it.
FRAGMENTS = [
    ("3eax", "RYRDVAEAVRKM"),
    ("3ckz", "VKDRSLHFAGEL"),
    ("4mo4", "NIGGFDEKLWQA"),
    ("1e2k", "TMLKHEQRVGDY"),
    ("2bok", "EDACQGDSGGPL"),
    ("5hvs", "KFWNAPRETIVD"),
]

BASELINE_METHODS = ("AF2", "AF3")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--session-dir", required=True, help="session journal directory")
    parser.add_argument("--cache-dir", required=True, help="persistent result cache directory")
    parser.add_argument("--session-id", default="resumable-sweep", help="journal identifier")
    parser.add_argument("--processes", type=int, default=0, help="engine worker processes")
    parser.add_argument("--seed", type=int, default=2025, help="master seed")
    parser.add_argument(
        "--transport", default=None,
        choices=["auto", "serial", "pool", "filequeue", "network"],
        help="executor transport (default: the engine's auto resolution)",
    )
    parser.add_argument("--spool-dir", default=None, help="filequeue spool directory")
    parser.add_argument("--serve-host", default=None, help="repro-serve host (network transport)")
    parser.add_argument("--serve-port", type=int, default=None, help="repro-serve port (network transport)")
    parser.add_argument(
        "--workers", type=int, default=0,
        help="repro-worker daemons the filequeue transport spawns itself "
             "(default 0: rely on externally launched workers)",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=30.0,
        help="filequeue stale-lease timeout in seconds",
    )
    parser.add_argument(
        "--speculate", type=float, default=None, metavar="K",
        help="filequeue straggler re-dispatch: clone any task claimed for "
             "over K x the fleet's rolling median job duration (first "
             "published result wins)",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None,
        help="filequeue elastic ceiling: grow the spawned fleet with queue "
             "depth up to this many daemons, retiring idle extras",
    )
    parser.add_argument(
        "--baseline-priority", type=int, default=None,
        help="priority class stamped on the baseline-fold jobs (higher "
             "drains first; hash-neutral, the fold jobs keep priority 0)",
    )
    parser.add_argument(
        "--cache-remote", default=None, metavar="HOST:PORT",
        help="append a repro-serve cache tier behind --cache-dir "
             "(reads fall through to it; writes go through both)",
    )
    parser.add_argument(
        "--no-spool-payloads", action="store_true",
        help="filequeue stub completions: workers write payloads straight "
             "into the cache tier and the spool carries only tiny stubs",
    )
    parser.add_argument(
        "--results-json", default=None,
        help="write the canonical per-job result payloads here (bit-identity audits)",
    )
    args = parser.parse_args(argv)

    warnings.filterwarnings("ignore", message="COBYLA")
    config = PipelineConfig.fast().with_updates(
        seed=args.seed,
        session_dir=args.session_dir,
        cache_dir=args.cache_dir,
    )
    if args.transport:
        config = config.with_updates(transport=args.transport)
    if args.spool_dir:
        config = config.with_updates(
            spool_dir=args.spool_dir,
            transport_workers=args.workers,
            transport_lease_timeout=args.lease_timeout,
        )
    if args.speculate is not None:
        config = config.with_updates(transport_speculate=args.speculate)
    if args.max_workers is not None:
        config = config.with_updates(transport_max_workers=args.max_workers)
    if args.serve_host:
        config = config.with_updates(serve_host=args.serve_host)
    if args.serve_port is not None:
        config = config.with_updates(serve_port=args.serve_port)
    if args.cache_remote:
        config = config.with_updates(cache_remote=args.cache_remote)
    if args.no_spool_payloads:
        config = config.with_updates(spool_payloads=False)
    engine = Engine(config=config, processes=args.processes)
    jobs = [
        engine.spec(pdb_id, sequence) for pdb_id, sequence in FRAGMENTS
    ] + [
        engine.baseline_spec(pdb_id, sequence, method)
        for pdb_id, sequence in FRAGMENTS
        for method in BASELINE_METHODS
    ]
    if args.baseline_priority is not None:
        from repro.engine import set_priority

        for job in jobs[len(FRAGMENTS):]:
            set_priority(job, args.baseline_priority)

    def progress(event):
        print(
            f"[{event.done}/{event.total}] {event.status:<9} {event.kind:<13} "
            f"{event.spec_hash[:16]}",
            flush=True,
        )

    # Same session id every run: the first run creates the journal, any later
    # run (after a crash or kill) resumes it and executes only the remainder.
    session = engine.submit(jobs, session_id=args.session_id, progress=progress)
    outcomes = session.results()

    if args.results_json:
        from repro.engine import JobFailure
        from repro.utils.io import _NumpyJSONEncoder

        canonical = [
            {"failed": outcome.as_dict()}
            if isinstance(outcome, JobFailure)
            else json.dumps(outcome.to_payload(), sort_keys=True, cls=_NumpyJSONEncoder)
            for outcome in outcomes
        ]
        Path(args.results_json).write_text(
            json.dumps(canonical, indent=2) + "\n", encoding="utf-8"
        )

    summary = session.summary()
    summary["engine"] = engine.stats()
    stats_path = Path(args.session_dir) / f"{args.session_id}-last-run.json"
    stats_path.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(summary, indent=2))
    return 1 if summary["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
