"""Docking case study for PDB entry 4jpy (the paper's Sec. 7.1 / Table 4 / Figure 6).

Folds the 4jpy fragment with the quantum pipeline and with the AF3-like
baseline, docks both against the synthetic native ligand with 20 independent
seeds, and prints the Table-4-style comparison plus a textual rendering of the
docking overlay.

Run with:  python examples/docking_case_study.py
"""

from __future__ import annotations

import numpy as np

from repro import PipelineConfig, QuantumFoldingPredictor
from repro.bio.reference import ReferenceStructureGenerator
from repro.dataset.fragments import fragment_by_pdb_id
from repro.docking.ligand import SyntheticLigandGenerator
from repro.docking.vina import DockingEngine
from repro.folding.baselines import AF3LikePredictor


def main() -> None:
    fragment = fragment_by_pdb_id("4jpy")
    config = PipelineConfig.fast()
    refgen = ReferenceStructureGenerator()
    reference = refgen.generate(fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start)
    ligand = SyntheticLigandGenerator().generate(reference)
    engine = DockingEngine(num_seeds=20, num_poses=10, mc_steps=200)

    predictions = {
        "QDockBank": QuantumFoldingPredictor(config=config).predict(
            fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start
        ),
        "AlphaFold3-like": AF3LikePredictor(reference_generator=refgen).predict(
            fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start
        ),
    }

    print(f"Docking case study for {fragment.pdb_id} ({fragment.sequence})")
    print(f"{'method':<18s} {'affinity':>9s} {'RMSD l.b.':>10s} {'RMSD u.b.':>10s}")
    for name, prediction in predictions.items():
        result = engine.dock(prediction.structure, ligand, receptor_id=f"{fragment.pdb_id}:{name}")
        print(
            f"{name:<18s} {result.mean_best_affinity:9.2f} "
            f"{result.mean_rmsd_lb:10.2f} {result.mean_rmsd_ub:10.2f}"
        )
    print("paper (Table 4):   QDockBank -4.3 / 1.4 / 1.9   AlphaFold3 -3.9 / 2.0 / 3.2")

    # Figure-6-style overlay summary for the quantum prediction.
    receptor = predictions["QDockBank"].structure.all_coords()
    dist = np.linalg.norm(ligand.coords[:, None, :] - receptor[None, :, :], axis=2)
    print(
        f"\noverlay: {int(np.count_nonzero(dist.min(axis=1) < 6.0))}/{ligand.num_atoms} ligand atoms "
        f"within 6 A of the predicted fragment surface; closest contact {dist.min():.2f} A"
    )


if __name__ == "__main__":
    main()
