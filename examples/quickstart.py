"""Quickstart: fold one pocket fragment with the quantum pipeline and evaluate it.

Run with:  python examples/quickstart.py

All fold work — this single fragment as much as the 55-fragment dataset build —
is routed through the job engine (``repro.engine``), which resolves the
execution backend by name from ``PipelineConfig.backend`` (``"statevector"``,
``"mps"``, ``"auto"`` or ``"eagle"``), fans batches out over worker processes,
and reuses previously folded fragments from a persistent on-disk cache::

    from repro.engine import Engine

    engine = Engine(config=PipelineConfig.fast(), cache="qdockbank_cache")
    specs = [engine.spec("2bok", "EDACQGDSGG"), engine.spec("3eax", "RYRDV")]
    results = engine.run(specs, processes=4)   # bit-identical to processes=0
    print(engine.stats())                      # executed vs cache-hit counts

A second ``engine.run`` over the same specs (or a later process pointed at the
same cache directory) performs zero VQE executions.
"""

from __future__ import annotations

from repro import PipelineConfig
from repro.bio.reference import ReferenceStructureGenerator
from repro.bio.rmsd import ca_rmsd
from repro.bio.pdb import structure_to_pdb_string
from repro.docking.ligand import SyntheticLigandGenerator
from repro.docking.vina import DockingEngine
from repro.dataset.fragments import fragment_by_pdb_id
from repro.engine import Engine


def main() -> None:
    fragment = fragment_by_pdb_id("2bok")  # EDACQGDSGG, a 10-residue protease-core motif
    config = PipelineConfig.fast()

    print(f"Folding {fragment.pdb_id} ({fragment.sequence}, residues {fragment.residue_range}) ...")
    engine = Engine(config=config)
    prediction = engine.fold(fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start)

    meta = prediction.metadata
    print(f"  qubits: {meta['qubits']}  circuit depth: {meta['circuit_depth']}")
    print(f"  lowest energy seen: {meta['lowest_energy']:.1f}  highest: {meta['highest_energy']:.1f}")
    print(f"  modelled hardware execution time: {meta['execution_time_s']:.0f} s "
          f"(~{meta['estimated_cost_usd']:.0f} USD)")

    reference = ReferenceStructureGenerator().generate(fragment.pdb_id, fragment.sequence)
    rmsd = ca_rmsd(prediction.structure, reference.structure)
    print(f"  CA RMSD to the experimental reference: {rmsd:.2f} A")

    ligand = SyntheticLigandGenerator().generate(reference)
    docking = DockingEngine(num_seeds=4, num_poses=5, mc_steps=150).dock(
        prediction.structure, ligand, receptor_id=f"{fragment.pdb_id}:QDock"
    )
    print(f"  docking affinity (mean best over {len(docking.runs)} seeds): "
          f"{docking.mean_best_affinity:.2f} kcal/mol")
    print(f"  pose RMSD bounds: l.b. {docking.mean_rmsd_lb:.2f} A  u.b. {docking.mean_rmsd_ub:.2f} A")

    print("\nFirst lines of the predicted PDB file:")
    print("\n".join(structure_to_pdb_string(prediction.structure).splitlines()[:8]))


if __name__ == "__main__":
    main()
