"""Build a slice of the QDockBank dataset and write it in the published layout.

Run with:  python examples/build_dataset.py [output_dir] [--groups S,M,L] [--per-group N]

Building all 55 fragments at paper fidelity takes a long time; by default this
example builds two fragments per group with the fast preset (a couple of
minutes) and writes the S/M/L folder structure, per-entry PDB files, quantum
metadata JSON and docking JSON plus the index used by the analysis layer.
"""

from __future__ import annotations

import argparse

from repro import DatasetBuilder, PipelineConfig
from repro.analysis.comparison import compare_methods
from repro.analysis.report import format_table, winrate_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="qdockbank_out")
    parser.add_argument("--groups", default="S,M,L", help="comma-separated length groups")
    parser.add_argument("--per-group", type=int, default=2, help="fragments per group")
    parser.add_argument("--processes", type=int, default=0, help="worker processes (0 = serial)")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result cache; re-runs skip already-computed folds, baselines and docking searches",
    )
    args = parser.parse_args()

    builder = DatasetBuilder(
        config=PipelineConfig.fast(), processes=args.processes, cache_dir=args.cache_dir
    )
    fragments = builder.select_fragments(groups=args.groups.split(","), limit_per_group=args.per_group)
    print(f"Building {len(fragments)} fragments: {[f.pdb_id for f in fragments]}")

    bank = builder.build(fragments)
    bank.save(args.output)
    print(f"Dataset written to {args.output}/")
    print(f"Engine stats: {builder.engine.stats()}")

    comparisons = {m: compare_methods(bank, m) for m in ("AF2", "AF3")}
    print("\nWin rates on this slice (measured vs paper):")
    print(format_table(winrate_report(comparisons)))


if __name__ == "__main__":
    main()
