"""RMSD case study for PDB entry 2qbs (the paper's Sec. 7.2 / Figure 7).

Folds the 2qbs fragment with the quantum pipeline and the AF2/AF3-like
baselines, aligns every prediction onto the synthetic experimental reference,
and prints per-residue deviation strips ('=' within 2 A of the reference,
'X' beyond) plus the final Cα RMSD of each method.

Run with:  python examples/rmsd_case_study.py
"""

from __future__ import annotations

from repro import PipelineConfig, QuantumFoldingPredictor
from repro.analysis.ascii_plots import deviation_profile
from repro.bio.reference import ReferenceStructureGenerator
from repro.bio.rmsd import ca_rmsd, per_residue_deviation
from repro.dataset.fragments import fragment_by_pdb_id
from repro.folding.baselines import AF2LikePredictor, AF3LikePredictor


def main() -> None:
    fragment = fragment_by_pdb_id("2qbs")
    config = PipelineConfig.fast()
    refgen = ReferenceStructureGenerator()
    reference = refgen.generate(fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start)

    predictors = {
        "QDock": QuantumFoldingPredictor(config=config),
        "AF2": AF2LikePredictor(reference_generator=refgen),
        "AF3": AF3LikePredictor(reference_generator=refgen),
    }

    profiles = {}
    print(f"RMSD case study for {fragment.pdb_id} ({fragment.sequence}, residues {fragment.residue_range})")
    for name, predictor in predictors.items():
        prediction = predictor.predict(fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start)
        profiles[name] = per_residue_deviation(prediction.structure, reference.structure)
        print(f"  {name:<6s} CA RMSD = {ca_rmsd(prediction.structure, reference.structure):.3f} A")
    print("  paper (Fig. 7): QDock 2.428 A, AF3 4.234 A\n")
    print(deviation_profile(profiles, threshold=2.0, title="per-residue deviation ('=' <= 2 A, 'X' > 2 A)"))


if __name__ == "__main__":
    main()
